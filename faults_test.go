package mrcprm_test

import (
	"testing"

	"mrcprm"
)

// Fault-injection integration tests: the properties ISSUE-level robustness
// work must hold end to end, exercised through the public API exactly as a
// user would.

func faultTestWorkload(t *testing.T) ([]*mrcprm.Job, mrcprm.Cluster) {
	t.Helper()
	wl := mrcprm.DefaultSyntheticWorkload()
	wl.NumResources = 10
	wl.NumMapHi = 8
	wl.NumReduceHi = 4
	wl.Lambda = 0.02
	jobs, err := wl.Generate(40, mrcprm.NewStream(11, 0xfeed))
	if err != nil {
		t.Fatal(err)
	}
	cluster := mrcprm.Cluster{NumResources: wl.NumResources,
		MapSlots: wl.MapSlotsPerResource, ReduceSlots: wl.ReduceSlotsPerResource}
	return jobs, cluster
}

func managers(cluster mrcprm.Cluster) map[string]func() mrcprm.ResourceManager {
	return map[string]func() mrcprm.ResourceManager{
		"mrcp":   func() mrcprm.ResourceManager { return mrcprm.NewManager(cluster, mrcprm.DefaultConfig()) },
		"minedf": func() mrcprm.ResourceManager { return mrcprm.NewMinEDF(cluster) },
		"fifo":   func() mrcprm.ResourceManager { return mrcprm.NewFIFO(cluster) },
	}
}

// A zero-rate fault plan must leave every manager's run bit-identical to a
// run with no injector installed at all.
func TestZeroRateFaultsBitIdentical(t *testing.T) {
	jobs, cluster := faultTestWorkload(t)
	for name, mk := range managers(cluster) {
		plain, err := mrcprm.Simulate(cluster, mk(), jobs)
		if err != nil {
			t.Fatalf("%s plain: %v", name, err)
		}
		plan, err := mrcprm.NewFaultPlan(mrcprm.FaultConfig{Seed1: 1, Seed2: 2})
		if err != nil {
			t.Fatal(err)
		}
		injected, err := mrcprm.SimulateWithFaults(cluster, mk(), jobs, plan)
		if err != nil {
			t.Fatalf("%s zero-rate: %v", name, err)
		}
		if plain.Fingerprint() != injected.Fingerprint() {
			t.Errorf("%s: zero-rate injector changed behavior: %x vs %x",
				name, plain.Fingerprint(), injected.Fingerprint())
		}
	}
}

// Same seed, same plan, same manager: byte-identical metrics. And because
// attempt fates are a pure function of (seed, task, attempt), the managers
// must all see the same number of injected failures even though they
// schedule the attempts at different times and places.
func TestFaultDeterminism(t *testing.T) {
	jobs, cluster := faultTestWorkload(t)
	cfg := mrcprm.FaultConfig{
		TaskFailureProb: 0.08,
		StragglerProb:   0.05,
		Seed1:           99, Seed2: 7,
	}
	failedBy := map[string]int{}
	for name, mk := range managers(cluster) {
		var prints []uint64
		var failed int
		for rep := 0; rep < 2; rep++ {
			plan, err := mrcprm.NewFaultPlan(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err := mrcprm.SimulateWithFaults(cluster, mk(), jobs, plan)
			if err != nil {
				t.Fatalf("%s rep %d: %v", name, rep, err)
			}
			prints = append(prints, m.Fingerprint())
			failed = m.TasksFailed
		}
		if prints[0] != prints[1] {
			t.Errorf("%s: non-deterministic under faults: %x vs %x", name, prints[0], prints[1])
		}
		failedBy[name] = failed
	}
	if failedBy["mrcp"] != failedBy["minedf"] || failedBy["mrcp"] != failedBy["fifo"] {
		t.Errorf("failure counts depend on the manager (plan is not schedule-independent): %v", failedBy)
	}
}

// Under combined task failures, stragglers, and resource outages, every
// manager must drive the run to completion: each arrived job either
// completes or is explicitly abandoned, and nothing errors out.
func TestRecoveryUnderCombinedFaults(t *testing.T) {
	jobs, cluster := faultTestWorkload(t)
	var horizon int64
	for _, j := range jobs {
		if j.Deadline > horizon {
			horizon = j.Deadline
		}
	}
	cfg := mrcprm.FaultConfig{
		TaskFailureProb: 0.10,
		StragglerProb:   0.05,
		MTBFMs:          float64(horizon) / 3,
		MTTRMs:          30_000,
		OutageHorizonMs: 2 * horizon,
		NumResources:    cluster.NumResources,
		Seed1:           5, Seed2: 6,
	}
	for name, mk := range managers(cluster) {
		plan, err := mrcprm.NewFaultPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mrcprm.SimulateWithFaults(cluster, mk(), jobs, plan)
		if err != nil {
			t.Fatalf("%s: run failed under faults: %v", name, err)
		}
		if m.JobsArrived != m.JobsCompleted+m.JobsAbandoned {
			t.Errorf("%s: %d arrived but %d completed + %d abandoned",
				name, m.JobsArrived, m.JobsCompleted, m.JobsAbandoned)
		}
		if m.TasksFailed == 0 && m.Outages == 0 {
			t.Errorf("%s: injector was configured but nothing was injected", name)
		}
	}
}

// alwaysFail dooms every attempt, so retry caps must kick in and abandon
// every job instead of retrying forever.
type alwaysFail struct{}

func (alwaysFail) Attempt(string, int) mrcprm.AttemptFault {
	return mrcprm.AttemptFault{Fails: true, FailPoint: 0.5}
}
func (alwaysFail) PlannedOutages() []mrcprm.Outage { return nil }

func TestRetryCapsAbandonDoomedJobs(t *testing.T) {
	jobs, cluster := faultTestWorkload(t)
	for name, mk := range managers(cluster) {
		m, err := mrcprm.SimulateWithFaults(cluster, mk(), jobs, alwaysFail{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.JobsAbandoned != m.JobsArrived {
			t.Errorf("%s: %d of %d doomed jobs abandoned", name, m.JobsAbandoned, m.JobsArrived)
		}
		if m.JobsCompleted != 0 {
			t.Errorf("%s: %d jobs completed although every attempt fails", name, m.JobsCompleted)
		}
	}
}
