package mrcprm_test

import (
	"testing"

	"mrcprm"
)

// Pinned end-to-end fingerprints guarding the rmkit job-lifecycle kernel:
// every manager must produce byte-identical simulated-time metrics on the
// same workloads, fault-free and under a fault plan, across refactors.
// (The kernel extraction itself was verified byte-identical against the
// pre-refactor managers under the experiment configuration.)
//
// MRCP-RM runs with Workers=1 (fingerprint-identical to the default
// per-CPU portfolio via worker-0-anchored determinism, but independent of
// the machine's core count) and without a solve time limit, so the search
// is bounded by the deterministic node budget alone and the pins hold on
// slow machines and under -race.
//
// If one of these fails after an intentional behavior change, regenerate
// the constants with:
//
//	go test -run TestPinnedFingerprints -v
func mrcpDeterministic(cluster mrcprm.Cluster) mrcprm.ResourceManager {
	cfg := mrcprm.DefaultConfig()
	cfg.Workers = 1
	cfg.SolveTimeLimit = 0
	return mrcprm.NewManager(cluster, cfg)
}

func tightWorkload(t *testing.T) ([]*mrcprm.Job, mrcprm.Cluster) {
	t.Helper()
	wl := mrcprm.DefaultSyntheticWorkload()
	wl.NumResources = 6
	wl.NumMapHi = 8
	wl.NumReduceHi = 4
	wl.Lambda = 0.05
	wl.DeadlineUL = 2
	jobs, err := wl.Generate(30, mrcprm.NewStream(7, 0xfeed))
	if err != nil {
		t.Fatal(err)
	}
	cluster := mrcprm.Cluster{NumResources: wl.NumResources,
		MapSlots: wl.MapSlotsPerResource, ReduceSlots: wl.ReduceSlotsPerResource}
	return jobs, cluster
}

func TestPinnedFingerprints(t *testing.T) {
	faultJobs, faultCluster := faultTestWorkload(t)
	tightJobs, tightCluster := tightWorkload(t)
	plan, err := mrcprm.NewFaultPlan(mrcprm.FaultConfig{
		TaskFailureProb: 0.08,
		StragglerProb:   0.05,
		MTBFMs:          300_000,
		MTTRMs:          60_000,
		OutageHorizonMs: 4_000_000,
		NumResources:    faultCluster.NumResources,
		Seed1:           99, Seed2: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		jobs      []*mrcprm.Job
		cluster   mrcprm.Cluster
		rm        func(mrcprm.Cluster) mrcprm.ResourceManager
		plan      mrcprm.FaultInjector
		want      uint64
		late      int
		abandoned int
	}{
		{name: "mrcp/plain", jobs: faultJobs, cluster: faultCluster,
			rm: mrcpDeterministic, want: 0xa410f5320964f0b8},
		{name: "minedf/plain", jobs: faultJobs, cluster: faultCluster,
			rm: mrcprm.NewMinEDF, want: 0xf8b83b796890cdae},
		{name: "fifo/plain", jobs: faultJobs, cluster: faultCluster,
			rm: mrcprm.NewFIFO, want: 0xf8b83b796890cdae},

		{name: "mrcp/faults", jobs: faultJobs, cluster: faultCluster,
			rm: mrcpDeterministic, plan: plan, want: 0xcad3f7de46a6f7b9, late: 7, abandoned: 5},
		{name: "minedf/faults", jobs: faultJobs, cluster: faultCluster,
			rm: mrcprm.NewMinEDF, plan: plan, want: 0x97a978ad6aa83b05, late: 7, abandoned: 6},
		{name: "fifo/faults", jobs: faultJobs, cluster: faultCluster,
			rm: mrcprm.NewFIFO, plan: plan, want: 0xda5c03474a540bae, late: 7, abandoned: 5},

		{name: "mrcp/tight", jobs: tightJobs, cluster: tightCluster,
			rm: mrcpDeterministic, want: 0x1ff7e76c274e0a72, late: 2},
		{name: "minedf/tight", jobs: tightJobs, cluster: tightCluster,
			rm: mrcprm.NewMinEDF, want: 0xe7197aadc0e68d9d, late: 4},
		{name: "fifo/tight", jobs: tightJobs, cluster: tightCluster,
			rm: mrcprm.NewFIFO, want: 0xf6d0876f8020f1ba, late: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := mrcprm.SimulateWithFaults(tc.cluster, tc.rm(tc.cluster), tc.jobs, tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Fingerprint(); got != tc.want {
				t.Errorf("fingerprint %#x, want %#x", got, tc.want)
			}
			if m.LateJobs != tc.late {
				t.Errorf("late jobs %d, want %d", m.LateJobs, tc.late)
			}
			if m.JobsAbandoned != tc.abandoned {
				t.Errorf("abandoned jobs %d, want %d", m.JobsAbandoned, tc.abandoned)
			}
			t.Logf("fingerprint %#x late=%d abandoned=%d", m.Fingerprint(), m.LateJobs, m.JobsAbandoned)
		})
	}
}
