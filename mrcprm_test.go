package mrcprm_test

import (
	"testing"
	"time"

	"mrcprm"
)

// The facade tests exercise the public API end to end the way the README
// quick start does.

func TestQuickstartFlow(t *testing.T) {
	wl := mrcprm.DefaultSyntheticWorkload()
	wl.NumResources = 10
	wl.NumMapHi = 10
	wl.NumReduceHi = 5
	wl.Lambda = 0.05
	jobs, err := wl.Generate(20, mrcprm.NewStream(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	cluster := mrcprm.Cluster{NumResources: 10, MapSlots: 2, ReduceSlots: 2}
	cfg := mrcprm.DefaultConfig()
	cfg.SolveTimeLimit = 0
	cfg.NodeLimit = 10_000
	m, err := mrcprm.Simulate(cluster, mrcprm.NewManager(cluster, cfg), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != 20 {
		t.Fatalf("completed %d", m.JobsCompleted)
	}
	if m.P() < 0 || m.P() > 1 || m.T() <= 0 {
		t.Fatalf("implausible metrics P=%g T=%g", m.P(), m.T())
	}
}

func TestBaselineFlow(t *testing.T) {
	wl := mrcprm.DefaultFacebookWorkload()
	wl.NumJobs = 15
	wl.NumResources = 8
	jobs, err := wl.Generate(mrcprm.NewStream(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Keep the test quick: drop the giant job types.
	var small []*mrcprm.Job
	for _, j := range jobs {
		if len(j.MapTasks) <= 200 {
			small = append(small, j)
		}
	}
	cluster := mrcprm.Cluster{NumResources: 8, MapSlots: 1, ReduceSlots: 1}
	m, err := mrcprm.Simulate(cluster, mrcprm.NewMinEDF(cluster), small)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != len(small) {
		t.Fatal("baseline lost jobs")
	}
}

func TestBatchFlow(t *testing.T) {
	j := &mrcprm.Job{ID: 0, Arrival: 0, EarliestStart: 0, Deadline: 100_000}
	j.MapTasks = []*mrcprm.Task{
		{ID: "t0_m1", JobID: 0, Type: mrcprm.MapTask, Exec: 10_000, Req: 1},
	}
	cluster := mrcprm.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	sched, err := mrcprm.SolveBatch(cluster, []*mrcprm.Job{j}, mrcprm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Assignments) != 1 || sched.Assignments[0].Start != 0 {
		t.Fatalf("unexpected schedule %+v", sched.Assignments)
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(mrcprm.Experiments()) < 11 {
		t.Fatalf("registry has %d entries", len(mrcprm.Experiments()))
	}
	if _, ok := mrcprm.ExperimentByID("fig7"); !ok {
		t.Fatal("fig7 missing")
	}
	d := mrcprm.DefaultExperimentOptions()
	f := mrcprm.FastExperimentOptions()
	if f.Jobs >= d.Jobs {
		t.Fatal("fast options not smaller than default")
	}
}

func TestWorkflowFacade(t *testing.T) {
	cluster := mrcprm.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	w := mrcprm.NewWorkflow(0, 0, 100_000)
	a := w.AddTask("a", mrcprm.MapTask, 10_000)
	b := w.AddTask("b", mrcprm.ReduceTask, 5_000)
	if err := w.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	sched, err := mrcprm.SolveWorkflows(cluster, []*mrcprm.Workflow{w}, mrcprm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Assignments) != 2 || len(sched.LateWorkflows) != 0 {
		t.Fatalf("schedule %+v", sched)
	}

	// Conversion from a MapReduce job.
	j := &mrcprm.Job{ID: 1, Arrival: 0, EarliestStart: 0, Deadline: 100_000}
	j.MapTasks = []*mrcprm.Task{{ID: "t1_m1", JobID: 1, Type: mrcprm.MapTask, Exec: 1000, Req: 1}}
	j.ReduceTasks = []*mrcprm.Task{{ID: "t1_r1", JobID: 1, Type: mrcprm.ReduceTask, Exec: 1000, Req: 1}}
	wf := mrcprm.WorkflowFromJob(j)
	if len(wf.Tasks) != 2 || wf.CriticalPath() != 2000 {
		t.Fatalf("conversion broken: %d tasks, cp %d", len(wf.Tasks), wf.CriticalPath())
	}
}

func TestSimulateTracedFacade(t *testing.T) {
	cluster := mrcprm.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j := &mrcprm.Job{ID: 0, Arrival: 0, EarliestStart: 0, Deadline: 100_000}
	j.MapTasks = []*mrcprm.Task{{ID: "t0_m1", JobID: 0, Type: mrcprm.MapTask, Exec: 1000, Req: 1}}
	m, rec, err := mrcprm.SimulateTraced(cluster, mrcprm.NewManager(cluster, mrcprm.DefaultConfig()), []*mrcprm.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != 1 || rec.Len() != 2 {
		t.Fatalf("completed=%d events=%d", m.JobsCompleted, rec.Len())
	}
	if u := m.MapUtilization(cluster); u != 1 {
		t.Fatalf("map utilization %g", u)
	}
}

func TestSimulateRejectsBadCluster(t *testing.T) {
	if _, err := mrcprm.Simulate(mrcprm.Cluster{}, nil, nil); err == nil {
		t.Fatal("bad cluster accepted")
	}
	if _, _, err := mrcprm.SimulateTraced(mrcprm.Cluster{}, nil, nil); err == nil {
		t.Fatal("bad cluster accepted")
	}
}

func TestManagerStatsExposed(t *testing.T) {
	cluster := mrcprm.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	cfg := mrcprm.DefaultConfig()
	cfg.DeferralLead = time.Minute
	mgr := mrcprm.NewManager(cluster, cfg)
	j := &mrcprm.Job{ID: 0, Arrival: 0, EarliestStart: 600_000, Deadline: 1_000_000}
	j.MapTasks = []*mrcprm.Task{{ID: "t0_m1", JobID: 0, Type: mrcprm.MapTask, Exec: 5000, Req: 1}}
	if _, err := mrcprm.Simulate(cluster, mgr, []*mrcprm.Job{j}); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().Deferred != 1 {
		t.Fatalf("stats %+v", mgr.Stats())
	}
}
