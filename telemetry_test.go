package mrcprm_test

import (
	"bytes"
	"encoding/json"
	"regexp"
	"testing"

	"mrcprm"
)

// telemetryWorkload builds a small seeded scenario shared by the telemetry
// tests.
func telemetryWorkload(t *testing.T) (mrcprm.Cluster, []*mrcprm.Job) {
	t.Helper()
	cfg := mrcprm.DefaultSyntheticWorkload()
	cfg.NumResources = 20
	jobs, err := cfg.Generate(30, mrcprm.NewStream(7, 0xfeed))
	if err != nil {
		t.Fatal(err)
	}
	cluster := mrcprm.Cluster{NumResources: cfg.NumResources,
		MapSlots: cfg.MapSlotsPerResource, ReduceSlots: cfg.ReduceSlotsPerResource}
	return cluster, jobs
}

// deterministicConfig removes the wall-clock solve budget: with a
// node-limit-only budget every search decision is a pure function of the
// model, so the telemetry stream is reproducible bit for bit. The node
// limit is kept small so the tests stay fast.
func deterministicConfig() mrcprm.Config {
	cfg := mrcprm.DefaultConfig()
	cfg.SolveTimeLimit = 0
	cfg.NodeLimit = 3000
	return cfg
}

func runInstrumented(t *testing.T, tel *mrcprm.Telemetry) *mrcprm.Metrics {
	t.Helper()
	cluster, jobs := telemetryWorkload(t)
	m, _, err := mrcprm.SimulateInstrumented(cluster,
		mrcprm.NewManager(cluster, deterministicConfig()), jobs, nil, tel, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// wallFields matches the wall-clock-derived fields ("wall_" key prefix by
// convention); they are the only nondeterministic bytes in the stream.
var wallFields = regexp.MustCompile(`,"wall_[a-z0-9_]+":(null|-?[0-9][0-9.eE+-]*)`)

// TestTelemetryDeterministic runs the same seeded scenario twice and
// requires the two JSONL streams to be byte-identical once wall-clock
// fields are stripped.
func TestTelemetryDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		runInstrumented(t, mrcprm.NewJSONLTelemetry(&buf))
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no telemetry emitted")
	}
	sa := wallFields.ReplaceAll(a, nil)
	sb := wallFields.ReplaceAll(b, nil)
	// Histogram names like "wall_solve_ms" appear as string *values* and are
	// deterministic; only a surviving wall_ *key* means the pattern is stale.
	if wallKey := regexp.MustCompile(`"wall_[a-z0-9_]+":`); wallKey.Match(sa) {
		t.Fatal("wall_ field survived stripping; fix the wallFields pattern")
	}
	if !bytes.Equal(sa, sb) {
		la, lb := bytes.Split(sa, []byte("\n")), bytes.Split(sb, []byte("\n"))
		for i := range la {
			if i >= len(lb) || !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("telemetry streams diverge at line %d:\n  run1: %s\n  run2: %s",
					i+1, la[i], lb[i])
			}
		}
		t.Fatal("telemetry streams differ in length")
	}
}

// TestTelemetryDoesNotPerturbSimulation requires the simulation outcome
// with telemetry attached to be bit-identical to an uninstrumented run.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	var buf bytes.Buffer
	on := runInstrumented(t, mrcprm.NewJSONLTelemetry(&buf))
	off := runInstrumented(t, nil)
	if buf.Len() == 0 {
		t.Fatal("no telemetry emitted in the instrumented run")
	}
	if on.Fingerprint() != off.Fingerprint() {
		t.Fatalf("metrics fingerprints differ: telemetry on %x, off %x",
			on.Fingerprint(), off.Fingerprint())
	}
}

// TestTelemetryStreamShape checks that every line is valid JSON with the
// envelope fields and that all three layers report.
func TestTelemetryStreamShape(t *testing.T) {
	var buf bytes.Buffer
	runInstrumented(t, mrcprm.NewJSONLTelemetry(&buf))

	layers := map[string]int{}
	kinds := map[string]int{}
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if _, ok := ev["t"].(float64); !ok {
			t.Fatalf("line %d has no numeric t: %s", i+1, line)
		}
		layer, _ := ev["layer"].(string)
		kind, _ := ev["kind"].(string)
		if layer == "" || kind == "" {
			t.Fatalf("line %d missing layer/kind: %s", i+1, line)
		}
		layers[layer]++
		kinds[layer+"/"+kind]++
	}
	for _, l := range []string{"solver", "manager", "sim"} {
		if layers[l] == 0 {
			t.Errorf("no events from layer %q: %v", l, layers)
		}
	}
	for _, k := range []string{"manager/reschedule", "solver/solve", "sim/sample", "sim/run_end", "obs/hist"} {
		if kinds[k] == 0 {
			t.Errorf("no %s events: %v", k, kinds)
		}
	}

	rep, err := mrcprm.ReadTelemetryReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadLines != 0 || rep.Reschedules == 0 || rep.Solves == 0 || rep.Samples == 0 {
		t.Errorf("report did not digest the stream: %+v", rep)
	}
	// The end-of-run summary carries the streaming-histogram digests: every
	// completed job observed into the sim-time end-to-end and lateness
	// histograms, every solve into the wall-clock solve histogram.
	for _, name := range []string{"job_e2e_ms", "job_lateness_ms", "wall_solve_ms"} {
		if rep.Hists[name].Count == 0 {
			t.Errorf("no %s histogram digest: %v", name, rep.Hists)
		}
	}
	if n := int(rep.Hists["job_e2e_ms"].Count); n != int(rep.RunEnd["jobs_completed"]) {
		t.Errorf("e2e histogram count %d != %v completed jobs", n, rep.RunEnd["jobs_completed"])
	}
}

// TestTelemetryDisabledIsInert: a nil telemetry handle must be safe to use
// through the whole public path.
func TestTelemetryDisabledIsInert(t *testing.T) {
	var tel *mrcprm.Telemetry
	if tel.Enabled() {
		t.Fatal("nil telemetry reports Enabled")
	}
	// The histogram surface must be inert too: observing into and
	// snapshotting a disabled handle is a no-op, not a panic.
	tel.Observe("job_e2e_ms", 123)
	if h := tel.Hist("job_e2e_ms"); h != nil {
		t.Fatal("nil telemetry returned a live histogram")
	}
	if hs := tel.HistSnapshots(); len(hs) != 0 {
		t.Fatalf("nil telemetry returned %d histogram snapshots", len(hs))
	}
	m := runInstrumented(t, nil)
	if m.N() != 0 && m.Records == nil {
		t.Fatal("simulation did not run")
	}
}
