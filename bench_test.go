// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI), plus the ablations called out in DESIGN.md and
// micro-benchmarks of the CP substrate.
//
// Each BenchmarkFigN runs the corresponding experiment at benchmark scale
// (experiment.FastOptions) and reports the figure's metrics through
// b.ReportMetric; the full-size tables behind EXPERIMENTS.md come from
// `go run ./cmd/experiments`. Run with -v to see the regenerated tables.
package mrcprm_test

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"mrcprm"
	"mrcprm/internal/experiment"
	"mrcprm/internal/workload"
)

// benchFigure runs one experiment per iteration and reports its metric
// columns. The metric names encode the factor value so the figure's series
// is visible in the benchmark output.
func benchFigure(b *testing.B, id string) {
	spec, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := experiment.FastOptions()
	var last experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := spec.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, p := range last.Points {
		tag := sanitize(p.Factor)
		if strings.HasPrefix(id, "fig2") || strings.HasPrefix(id, "fig3") {
			tag = sanitize(p.Manager) + "_" + tag
		}
		b.ReportMetric(p.P.Mean*100, "P%_"+tag)
		b.ReportMetric(p.T.Mean, "T_s_"+tag)
		b.ReportMetric(p.O.Mean*1000, "O_ms_"+tag)
	}
	b.Log("\n" + last.Table())
}

func sanitize(s string) string {
	return strings.NewReplacer("=", "", " ", "", "-", "").Replace(s)
}

// Figs 2 and 3 share one sweep: the MRCP-RM vs MinEDF-WC comparison on the
// Facebook workload. Fig 2 is the P column, Fig 3 the T column.
func BenchmarkFig2FacebookLateJobs(b *testing.B) { benchFigure(b, "fig2") }

func BenchmarkFig3FacebookTurnaround(b *testing.B) { benchFigure(b, "fig3") }

// Factor-at-a-time experiments over the Table 3 synthetic workload.
func BenchmarkFig4TaskExecutionTime(b *testing.B) { benchFigure(b, "fig4") }

func BenchmarkFig5EarliestStartTime(b *testing.B) { benchFigure(b, "fig5") }

func BenchmarkFig6EarliestStartProbability(b *testing.B) { benchFigure(b, "fig6") }

func BenchmarkFig7Deadline(b *testing.B) { benchFigure(b, "fig7") }

func BenchmarkFig8ArrivalRate(b *testing.B) { benchFigure(b, "fig8") }

func BenchmarkFig9NumResources(b *testing.B) { benchFigure(b, "fig9") }

// Ablations of the paper's design choices (DESIGN.md §5).
func BenchmarkAblationCombinedVsDirect(b *testing.B) { benchFigure(b, "ablation-matchmaking") }

func BenchmarkAblationDeferral(b *testing.B) { benchFigure(b, "ablation-deferral") }

func BenchmarkAblationOrdering(b *testing.B) { benchFigure(b, "ablation-ordering") }

func BenchmarkAblationBatching(b *testing.B) { benchFigure(b, "ablation-batching") }

// Table 3: synthetic workload generation throughput.
func BenchmarkTable3SyntheticGenerator(b *testing.B) {
	cfg := workload.DefaultSynthetic()
	rng := mrcprm.NewStream(1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Generate(100, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 4: Facebook workload generation throughput.
func BenchmarkTable4FacebookGenerator(b *testing.B) {
	cfg := workload.FacebookConfig{NumJobs: 100, Lambda: 0.0005, DeadlineUL: 2, NumResources: 64}
	rng := mrcprm.NewStream(1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Generate(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1: one CP solve of the full formulation (closed-system batch).
func BenchmarkTable1BatchSolve(b *testing.B) {
	cfg := workload.DefaultSynthetic()
	cfg.NumResources = 10
	jobs, err := cfg.Generate(10, mrcprm.NewStream(3, 4))
	if err != nil {
		b.Fatal(err)
	}
	cluster := mrcprm.Cluster{NumResources: 10, MapSlots: 2, ReduceSlots: 2}
	mcfg := mrcprm.DefaultConfig()
	mcfg.SolveTimeLimit = 0
	mcfg.NodeLimit = 3_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mrcprm.SolveBatch(cluster, jobs, mcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 2: the incremental open-system algorithm — one full simulation of
// a job stream under MRCP-RM, i.e. repeated regenerate-freeze-resolve
// rounds.
func BenchmarkTable2IncrementalManager(b *testing.B) {
	cfg := workload.DefaultSynthetic()
	cfg.NumResources = 10
	cfg.NumMapHi = 20
	cfg.NumReduceHi = 10
	cfg.Lambda = 0.05
	cluster := mrcprm.Cluster{NumResources: 10, MapSlots: 2, ReduceSlots: 2}
	mcfg := mrcprm.DefaultConfig()
	mcfg.SolveTimeLimit = 0
	mcfg.NodeLimit = 10_000
	for i := 0; i < b.N; i++ {
		jobs, err := cfg.Generate(40, mrcprm.NewStream(5, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mrcprm.Simulate(cluster, mrcprm.NewManager(cluster, mcfg), jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmark: a single large first descent (a type-9/10 Facebook job
// arriving alone), the dominant cost inside O for giant jobs.
func BenchmarkSolverGiantJobDescent(b *testing.B) {
	fb := workload.FacebookConfig{NumJobs: 1, Lambda: 0.001, DeadlineUL: 2, NumResources: 64}
	cluster := mrcprm.Cluster{NumResources: 64, MapSlots: 1, ReduceSlots: 1}
	mcfg := mrcprm.DefaultConfig()
	for i := 0; i < b.N; i++ {
		rng := mrcprm.NewStream(8, uint64(i))
		jobs, err := fb.Generate(rng)
		if err != nil {
			b.Fatal(err)
		}
		// Replace the job with a synthetic type-9 shape so every iteration
		// is giant regardless of the sampled mix.
		giant := &mrcprm.Job{ID: 0, Arrival: 0, EarliestStart: 0, Deadline: 1 << 40}
		for k := 0; k < 2400; k++ {
			giant.MapTasks = append(giant.MapTasks, &mrcprm.Task{
				ID: fmt.Sprintf("t0_m%d", k+1), JobID: 0, Type: mrcprm.MapTask,
				Exec: jobs[0].MapTasks[0].Exec%50_000 + 1000, Req: 1})
		}
		for k := 0; k < 360; k++ {
			giant.ReduceTasks = append(giant.ReduceTasks, &mrcprm.Task{
				ID: fmt.Sprintf("t0_r%d", k+1), JobID: 0, Type: mrcprm.ReduceTask,
				Exec: 400_000, Req: 1})
		}
		if _, err := mrcprm.Simulate(cluster, mrcprm.NewManager(cluster, mcfg), []*mrcprm.Job{giant}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTelemetry runs the incremental-manager scenario once per iteration
// with the given telemetry handle; comparing the On/Off variants measures
// the throughput cost of full instrumentation versus the inert nil handle.
func benchTelemetry(b *testing.B, makeTel func() *mrcprm.Telemetry) {
	cfg := workload.DefaultSynthetic()
	cfg.NumResources = 10
	cfg.NumMapHi = 20
	cfg.NumReduceHi = 10
	cfg.Lambda = 0.05
	cluster := mrcprm.Cluster{NumResources: 10, MapSlots: 2, ReduceSlots: 2}
	mcfg := mrcprm.DefaultConfig()
	mcfg.SolveTimeLimit = 0
	mcfg.NodeLimit = 10_000
	for i := 0; i < b.N; i++ {
		jobs, err := cfg.Generate(40, mrcprm.NewStream(5, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		mgr := mrcprm.NewManager(cluster, mcfg)
		if _, _, err := mrcprm.SimulateInstrumented(cluster, mgr, jobs, nil, makeTel(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTelemetryOff(b *testing.B) {
	benchTelemetry(b, func() *mrcprm.Telemetry { return nil })
}

func BenchmarkTelemetryOn(b *testing.B) {
	benchTelemetry(b, func() *mrcprm.Telemetry { return mrcprm.NewJSONLTelemetry(io.Discard) })
}
