// Package mrcprm is the public API of this repository: a reproduction of
// "A Constraint Programming-Based Resource Management Technique for
// Processing MapReduce Jobs with SLAs on Clouds" (Lim, Majumdar,
// Ashwood-Smith; ICPP 2014).
//
// The package re-exports the stable surface of the internal packages:
//
//   - the MapReduce job/SLA model and the paper's two workload generators
//     (Table 3 synthetic, Table 4 Facebook-derived),
//   - MRCP-RM itself (the CP-based resource manager of Sections III-V) and
//     the MinEDF-WC baseline it is evaluated against,
//   - the discrete event simulator and its metrics (O, N, T, P),
//   - the closed-system batch solver, and
//   - the experiment harness that regenerates Figs 2-9.
//
// # Quick start
//
//	cfg := mrcprm.DefaultSyntheticWorkload()
//	jobs, _ := cfg.Generate(100, mrcprm.NewStream(1, 2))
//	cluster := mrcprm.Cluster{NumResources: 50, MapSlots: 2, ReduceSlots: 2}
//	metrics, _ := mrcprm.Simulate(cluster, mrcprm.NewManager(cluster, mrcprm.DefaultConfig()), jobs)
//	fmt.Printf("P=%.2f%% T=%.1fs O=%.4fs\n", 100*metrics.P(), metrics.T(), metrics.O())
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and paper-to-module mapping.
package mrcprm

import (
	"io"
	"net/http"

	"mrcprm/internal/core"
	"mrcprm/internal/cp"
	"mrcprm/internal/experiment"
	"mrcprm/internal/faults"
	"mrcprm/internal/fifo"
	"mrcprm/internal/minedf"
	"mrcprm/internal/obs"
	_ "mrcprm/internal/policies" // register every built-in policy
	"mrcprm/internal/rmkit"
	"mrcprm/internal/service"
	"mrcprm/internal/shard"
	"mrcprm/internal/sim"
	"mrcprm/internal/slo"
	"mrcprm/internal/stats"
	"mrcprm/internal/trace"
	"mrcprm/internal/workflow"
	"mrcprm/internal/workload"
)

// Workload model (Section III.A).
type (
	// Job is a MapReduce job with its SLA (earliest start time, task
	// execution times, end-to-end deadline).
	Job = workload.Job
	// Task is one map or reduce task.
	Task = workload.Task
	// TaskType distinguishes map from reduce tasks.
	TaskType = workload.TaskType
	// SyntheticWorkload parameterizes the Table 3 generator.
	SyntheticWorkload = workload.SyntheticConfig
	// FacebookWorkload parameterizes the Table 4 generator.
	FacebookWorkload = workload.FacebookConfig
)

// Task types.
const (
	MapTask    = workload.MapTask
	ReduceTask = workload.ReduceTask
)

// Simulation substrate (Section VI).
type (
	// Cluster is the simulated system component. Cluster.Speed gives every
	// machine a relative speed factor (nil = uniform) and
	// Cluster.MemCapacity adds an optional per-machine memory dimension;
	// both default off, in which case behavior is bit-identical to the
	// historical uniform-slot model.
	Cluster = sim.Cluster
	// ClusterSpec is the declarative builder for a (possibly heterogeneous)
	// cluster: one ResourceSpec per machine plus shared slot counts and an
	// optional memory capacity. Build the sim.Cluster with its Cluster()
	// method.
	ClusterSpec = core.ClusterSpec
	// ResourceSpec describes one machine of a ClusterSpec: a relative speed
	// factor and an optional locality weight.
	ResourceSpec = core.ResourceSpec
	// Metrics carries the paper's O, N, T, P metrics for one run.
	Metrics = sim.Metrics
	// JobRecord is a per-job outcome.
	JobRecord = sim.JobRecord
	// ResourceManager is the pluggable matchmaking-and-scheduling policy.
	ResourceManager = sim.ResourceManager
	// Context is the view managers operate through.
	Context = sim.Context
)

// MRCP-RM (Sections III-V).
type (
	// Config tunes MRCP-RM.
	Config = core.Config
	// Manager is the CP-based resource manager.
	Manager = core.Manager
	// ManagerStats carries MRCP-RM's internal counters.
	ManagerStats = core.Stats
	// Schedule is a closed-system batch solve result.
	Schedule = core.Schedule
	// Assignment is one task placement in a batch schedule.
	Assignment = core.Assignment
	// SolveMode selects combined (two-phase) or direct matchmaking.
	SolveMode = core.SolveMode
	// OrderingStrategy selects the search's job ordering heuristic.
	OrderingStrategy = cp.OrderingStrategy
)

// Solve modes and ordering strategies.
const (
	ModeCombined = core.ModeCombined
	ModeDirect   = core.ModeDirect

	OrderEDF         = cp.OrderEDF
	OrderJobID       = cp.OrderJobID
	OrderLeastLaxity = cp.OrderLeastLaxity
)

// Experiments (Section VI).
type (
	// Experiment is one registered evaluation experiment.
	Experiment = experiment.Spec
	// ExperimentOptions sizes an experiment run.
	ExperimentOptions = experiment.Options
	// ExperimentResult is a regenerated figure.
	ExperimentResult = experiment.Result
)

// Workflows with user-specified precedence (the paper's future-work
// generalization beyond two-phase MapReduce).
type (
	// Workflow is a DAG of tasks with an end-to-end SLA.
	Workflow = workflow.Workflow
	// WorkflowTask is one node of a workflow DAG.
	WorkflowTask = workflow.Task
	// WorkflowSchedule is a solved batch of workflows.
	WorkflowSchedule = workflow.Schedule
	// WorkflowAssignment is one task placement in a workflow schedule.
	WorkflowAssignment = workflow.Assignment
)

// NewWorkflow creates an empty workflow with the given SLA.
func NewWorkflow(id int, earliestStart, deadline int64) *Workflow {
	return workflow.New(id, earliestStart, deadline)
}

// WorkflowFromJob converts a two-phase MapReduce job into the equivalent
// workflow DAG.
func WorkflowFromJob(j *Job) *Workflow { return workflow.FromMapReduceJob(j) }

// SolveWorkflows maps and schedules a batch of workflows, minimizing the
// number that miss their deadlines.
func SolveWorkflows(cluster Cluster, wfs []*Workflow, cfg Config) (*WorkflowSchedule, error) {
	return workflow.Solve(cluster, wfs, cfg)
}

// Fault injection and recovery (robustness evaluation beyond the paper's
// fault-free model).
type (
	// FaultConfig parameterizes the deterministic fault injector: task
	// failure and straggler probabilities plus resource outage processes.
	FaultConfig = faults.Config
	// FaultInjector supplies a fault plan to the simulator.
	FaultInjector = sim.FaultInjector
	// AttemptFault is the injected fate of one task execution attempt.
	AttemptFault = sim.AttemptFault
	// Outage is one planned resource outage window.
	Outage = sim.Outage
)

// NewFaultPlan builds the standard deterministic injector. The plan is a
// pure function of the config: the same seeds yield the same task fates
// and outage windows regardless of the manager under test.
func NewFaultPlan(cfg FaultConfig) (FaultInjector, error) { return faults.New(cfg) }

// SimulateWithFaults is Simulate with a fault injector installed. A nil
// injector behaves exactly like Simulate.
func SimulateWithFaults(cluster Cluster, rm ResourceManager, jobs []*Job, fi FaultInjector) (*Metrics, error) {
	s, err := sim.New(cluster, rm, jobs)
	if err != nil {
		return nil, err
	}
	if fi != nil {
		if err := s.SetFaultInjector(fi); err != nil {
			return nil, err
		}
	}
	return s.Run()
}

// SimulateTracedWithFaults is SimulateTraced with a fault injector
// installed. A nil injector behaves exactly like SimulateTraced.
func SimulateTracedWithFaults(cluster Cluster, rm ResourceManager, jobs []*Job, fi FaultInjector) (*Metrics, *TraceRecorder, error) {
	s, err := sim.New(cluster, rm, jobs)
	if err != nil {
		return nil, nil, err
	}
	if fi != nil {
		if err := s.SetFaultInjector(fi); err != nil {
			return nil, nil, err
		}
	}
	rec := trace.NewRecorder()
	s.SetObserver(rec)
	m, err := s.Run()
	return m, rec, err
}

// Observability (telemetry core, solver search statistics).
type (
	// Telemetry is the process-wide telemetry handle: counters, gauges,
	// spans, and a structured JSONL event sink. A nil *Telemetry is inert
	// and adds no overhead, so instrumented code never branches on it.
	Telemetry = obs.Telemetry
	// SearchStats carries the CP solver's per-solve search counters
	// (nodes, backtracks, propagations, improvement passes, objective
	// timeline); available on every batch Schedule via Schedule.Search.
	SearchStats = cp.SearchStats
	// TelemetryReport is the digest obsreport renders from a JSONL stream.
	TelemetryReport = obs.Report
	// HistSnapshot is an immutable streaming-histogram snapshot with
	// quantile estimation (one-bucket-width accuracy, factor sqrt 2).
	HistSnapshot = obs.HistSnapshot
	// PromScrape is the parsed content of one Prometheus text exposition
	// payload (counters/gauges plus reconstructed histogram families).
	PromScrape = obs.PromScrape
	// PromHist is one scraped Prometheus histogram family.
	PromHist = obs.PromHist
)

// NewJSONLTelemetry returns a telemetry handle that streams events to w as
// JSON Lines. Call Flush (or EmitSummary then Flush) when the run ends.
func NewJSONLTelemetry(w io.Writer) *Telemetry { return obs.New(obs.NewJSONLWriter(w)) }

// NewRegistryTelemetry returns a telemetry handle with live counter, gauge,
// and histogram registries but no event stream — the mrcpd default, so the
// Prometheus endpoint serves histograms even without a -telemetry file.
func NewRegistryTelemetry() *Telemetry { return obs.New(obs.DiscardSink{}) }

// ParsePrometheus parses Prometheus text exposition format 0.0.4, strictly
// enough to double as a well-formedness assertion in CI.
func ParsePrometheus(r io.Reader) (*PromScrape, error) { return obs.ParsePrometheus(r) }

// ReadTelemetryReport digests a telemetry JSONL stream into a report
// (solve-latency percentiles, fallback rate, objective convergence, sim
// time-series envelope).
func ReadTelemetryReport(r io.Reader) (*TelemetryReport, error) { return obs.ReadReport(r) }

// SimulateInstrumented is SimulateTracedWithFaults with a telemetry stream
// attached to the simulator and, when rm supports it (MRCP-RM does), to the
// resource manager. sampleEveryMS sets the sim time-series cadence (<=0
// selects the 5 s default). After the run it emits the counter summary
// (stamped at the run's makespan) and flushes the sink. A nil tel behaves
// exactly like SimulateTracedWithFaults; a nil injector means fault-free.
func SimulateInstrumented(cluster Cluster, rm ResourceManager, jobs []*Job,
	fi FaultInjector, tel *Telemetry, sampleEveryMS int64) (*Metrics, *TraceRecorder, error) {
	s, err := sim.New(cluster, rm, jobs)
	if err != nil {
		return nil, nil, err
	}
	if fi != nil {
		if err := s.SetFaultInjector(fi); err != nil {
			return nil, nil, err
		}
	}
	if tel.Enabled() {
		s.SetTelemetry(tel, sampleEveryMS)
		if im, ok := rm.(interface{ SetTelemetry(*Telemetry) }); ok {
			im.SetTelemetry(tel)
		}
	}
	rec := trace.NewRecorder()
	s.SetObserver(rec)
	m, err := s.Run()
	if tel.Enabled() && m != nil {
		tel.EmitSummary(m.MakespanMS)
		tel.Flush()
	}
	return m, rec, err
}

// Online scheduling service (the engine behind cmd/mrcpd).
type (
	// ServiceConfig assembles an online scheduling engine.
	ServiceConfig = service.Config
	// ServiceEngine accepts an open stream of job submissions and drives a
	// resource manager over the simulator in virtual or wall-clock time.
	ServiceEngine = service.Engine
	// ServiceMode selects virtual or wall-clock pacing.
	ServiceMode = service.Mode
	// ServiceJobStatus is the queryable view of one submission.
	ServiceJobStatus = service.JobStatus
	// ServiceSnapshot is the engine-wide metrics view.
	ServiceSnapshot = service.Snapshot
	// JobSpec is the wire representation of a job submission.
	JobSpec = workload.JobSpec
	// AdmissionError reports a provably infeasible submission.
	AdmissionError = core.AdmissionError
	// ServiceOverloadError reports a submission shed by the MaxPending
	// backpressure bound, carrying the queue state and a retry hint.
	ServiceOverloadError = service.OverloadError
	// ServiceRecoveryInfo summarizes what RecoverServiceEngine replayed
	// from a write-ahead journal.
	ServiceRecoveryInfo = service.RecoveryInfo
	// ServiceFaultSpec is the journalable per-attempt fault plan installed
	// through ServiceEngine.ApplyFaults.
	ServiceFaultSpec = service.FaultSpec
	// SLOConfig tunes the deadline-miss attribution and burn monitor
	// (miss budget, sliding window, trace ring size).
	SLOConfig = slo.Config
	// SLOBurnInfo is a point-in-time view of the miss-budget burn monitor.
	SLOBurnInfo = slo.BurnInfo
	// SLOTraceEvent is one entry in a job's lifecycle timeline.
	SLOTraceEvent = slo.TraceEvent
)

// Service clock modes.
const (
	ServiceVirtual = service.Virtual
	ServiceWall    = service.Wall
)

// Service engine sentinel errors.
var (
	// ErrServiceClosed means intake has been closed to new submissions.
	ErrServiceClosed = service.ErrClosed
	// ErrServiceRunning means Start was called on a running engine.
	ErrServiceRunning = service.ErrRunning
	// ErrServiceStopped means the run was aborted by Stop.
	ErrServiceStopped = service.ErrStopped
	// ErrServiceOverloaded means the submission was shed by the MaxPending
	// bound; errors.As yields the *ServiceOverloadError with the details.
	ErrServiceOverloaded = service.ErrOverloaded
	// ErrServiceJournal means a write-ahead-journal append failed; the
	// submission was not accepted.
	ErrServiceJournal = service.ErrJournal
)

// NewServiceEngine assembles an online scheduling engine; call Start to
// launch its run loop.
func NewServiceEngine(cfg ServiceConfig) (*ServiceEngine, error) { return service.New(cfg) }

// RecoverServiceEngine rebuilds an engine from the write-ahead journal at
// cfg.JournalPath, replaying every journaled submission, fault switch,
// outage, and intake close. Start the returned engine to run the recovered
// stream; in virtual mode with DeterministicConfig solver settings the
// final metrics fingerprint is bit-identical to the uninterrupted run's.
func RecoverServiceEngine(cfg ServiceConfig) (*ServiceEngine, *ServiceRecoveryInfo, error) {
	return service.Recover(cfg)
}

// NewServiceHandler exposes the engine over HTTP/JSON (the cmd/mrcpd API).
func NewServiceHandler(e *ServiceEngine) http.Handler { return service.NewHandler(e) }

// JobSpecOf captures a job as a submission spec for the service API.
func JobSpecOf(j *Job) JobSpec { return workload.SpecOf(j) }

// Sharded multi-engine service (the admission router behind mrcpd -shards).
type (
	// ShardConfig assembles a sharded router over N per-shard engines.
	ShardConfig = shard.Config
	// ShardRouter fronts N independent scheduler shards with deterministic
	// feasibility-then-load admission routing.
	ShardRouter = shard.Router
	// ShardSnapshot is the aggregated /v1/metrics payload: the embedded
	// flat ServiceSnapshot carries fleet aggregates and Shards the
	// per-shard breakdown.
	ShardSnapshot = shard.Snapshot
	// ShardView is one shard's slice of the aggregated snapshot.
	ShardView = shard.ShardView
	// ShardRecoveryInfo aggregates what RecoverShardRouter replayed across
	// the per-shard journal segments.
	ShardRecoveryInfo = shard.RecoveryInfo
)

// NewShardRouter partitions the cluster and builds one engine per shard;
// call Start to launch every shard's run loop.
func NewShardRouter(cfg ShardConfig) (*ShardRouter, error) { return shard.New(cfg) }

// RecoverShardRouter rebuilds a sharded router from its N journal segments
// (ShardJournalPath(Base.JournalPath, 0..N-1)).
func RecoverShardRouter(cfg ShardConfig) (*ShardRouter, *ShardRecoveryInfo, error) {
	return shard.Recover(cfg)
}

// NewShardHandler exposes the router over the same HTTP surface as the
// single-engine service handler.
func NewShardHandler(r *ShardRouter) http.Handler { return shard.NewHandler(r) }

// ShardJournalPath names shard i's write-ahead journal segment under a
// base path.
func ShardJournalPath(base string, i int) string { return shard.SegmentPath(base, i) }

// PartitionCluster splits a cluster into n disjoint shards (the first
// NumResources%n shards absorb the remainder).
func PartitionCluster(c Cluster, n int) ([]Cluster, error) { return shard.Partition(c, n) }

// CombineShardFingerprints folds per-shard run fingerprints (in shard
// order) into the aggregate fingerprint the sharded /v1/metrics reports.
func CombineShardFingerprints(fps []uint64) uint64 { return shard.CombineFingerprints(fps) }

// TwoClassCluster builds the canonical heterogeneity experiment spec: m
// machines where the first half run at speed 1.0 and the second half at
// 1/spread (spread >= 1; 1.0 yields a uniform cluster).
func TwoClassCluster(m int, mapSlots, reduceSlots int64, spread float64) ClusterSpec {
	return core.TwoClassSpec(m, mapSlots, reduceSlots, spread)
}

// ScaledExec returns the effective running time of a task with nominal
// execution time exec on a machine with the given speed factor (ceiling,
// minimum 1 ms; speed 1.0 returns exec unchanged).
func ScaledExec(exec int64, speed float64) int64 { return sim.ScaledExec(exec, speed) }

// CheckAdmission is the service's fast lower-bound feasibility test: a
// non-nil *AdmissionError means the job provably cannot meet its deadline
// on the cluster even with every slot idle.
func CheckAdmission(cluster Cluster, j *Job, now int64) error {
	return core.CheckAdmission(cluster, j, now)
}

// Stream is a deterministic random number stream.
type Stream = stats.Stream

// NewStream returns a deterministic random stream for the given seed.
func NewStream(seed1, seed2 uint64) *Stream { return stats.NewStream(seed1, seed2) }

// DefaultSyntheticWorkload returns Table 3 with every factor at its
// default (boldface) value.
func DefaultSyntheticWorkload() SyntheticWorkload { return workload.DefaultSynthetic() }

// DefaultFacebookWorkload returns the Section VI.B.1 comparison workload.
func DefaultFacebookWorkload() FacebookWorkload { return workload.DefaultFacebook() }

// DefaultConfig returns the MRCP-RM configuration used by the experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// DeterministicConfig returns DefaultConfig with every wall-clock-dependent
// solver knob pinned (no solve time limit, node-budget bound, one portfolio
// worker), so identical job streams produce byte-identical schedules — the
// setting journal-replay recovery and fingerprint verification require.
func DeterministicConfig() Config { return core.DeterministicConfig() }

// NewManager creates an MRCP-RM resource manager for the cluster.
func NewManager(cluster Cluster, cfg Config) *Manager { return core.New(cluster, cfg) }

// NewMinEDF creates the MinEDF-WC baseline resource manager.
func NewMinEDF(cluster Cluster) ResourceManager { return minedf.New(cluster) }

// NewFIFO creates the deadline-blind best-effort baseline.
func NewFIFO(cluster Cluster) ResourceManager { return fifo.New(cluster) }

// Policy registry (internal/rmkit): every resource-management policy
// registers itself under a selection name, and entry points construct
// managers by that name — adding a policy requires no edits outside its own
// package.
type (
	// PolicyOptions carries the policy-agnostic construction knobs; policy
	// specific configuration (e.g. Config for "mrcp") travels in Extra.
	PolicyOptions = rmkit.Options
	// RetryPolicy is the canonical fault-recovery budget every policy
	// honors: a per-task retry cap and an optional per-job retry budget.
	RetryPolicy = rmkit.RetryPolicy
)

// DefaultRetryPolicy returns the retry budgets every policy starts from.
func DefaultRetryPolicy() RetryPolicy { return rmkit.DefaultRetryPolicy() }

// NewPolicy constructs a registered policy's manager by name ("mrcp",
// "minedf", "fifo", "edf", ...). An unknown name's error lists every
// registered policy.
func NewPolicy(name string, cluster Cluster, opts PolicyOptions) (ResourceManager, error) {
	return rmkit.New(name, cluster, opts)
}

// PolicyNames returns every registered policy name, sorted.
func PolicyNames() []string { return rmkit.Names() }

// Simulate runs the job stream against the cluster under the manager and
// returns the collected metrics.
func Simulate(cluster Cluster, rm ResourceManager, jobs []*Job) (*Metrics, error) {
	s, err := sim.New(cluster, rm, jobs)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// SolveBatch maps and schedules a fixed batch of jobs in one shot (the
// closed-system scenario), minimizing the number of late jobs.
func SolveBatch(cluster Cluster, jobs []*Job, cfg Config) (*Schedule, error) {
	return core.SolveBatch(cluster, jobs, cfg)
}

// WriteBatchModelOPL renders the CP model a batch solve would use in
// OPL-like syntax (the paper's Section IV notation) without solving it.
func WriteBatchModelOPL(cluster Cluster, jobs []*Job, cfg Config, w io.Writer) error {
	return core.WriteBatchModelOPL(cluster, jobs, cfg, w)
}

// TraceRecorder records every task start/finish of a run; it exports CSV
// or JSON and digests slot-occupancy profiles.
type TraceRecorder = trace.Recorder

// SimulateTraced is Simulate with schedule tracing attached.
func SimulateTraced(cluster Cluster, rm ResourceManager, jobs []*Job) (*Metrics, *TraceRecorder, error) {
	s, err := sim.New(cluster, rm, jobs)
	if err != nil {
		return nil, nil, err
	}
	rec := trace.NewRecorder()
	s.SetObserver(rec)
	m, err := s.Run()
	return m, rec, err
}

// Experiments lists every registered experiment in paper order.
func Experiments() []Experiment { return experiment.Registry }

// ExperimentByID looks up one experiment ("fig2".."fig9", "ablation-...").
func ExperimentByID(id string) (Experiment, bool) { return experiment.ByID(id) }

// DefaultExperimentOptions sizes a full-quality experiment run.
func DefaultExperimentOptions() ExperimentOptions { return experiment.DefaultOptions() }

// FastExperimentOptions sizes a quick (benchmark/CI) experiment run.
func FastExperimentOptions() ExperimentOptions { return experiment.FastOptions() }
