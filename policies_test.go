package mrcprm_test

import (
	"fmt"
	"strings"
	"testing"

	"mrcprm"
)

// newRegisteredPolicy builds one registered policy for tests; MRCP-RM gets
// a single-threaded portfolio and a node-bounded (wall-clock-free) search
// so results do not depend on the machine's core count or speed.
func newRegisteredPolicy(t *testing.T, name string, cluster mrcprm.Cluster, opts mrcprm.PolicyOptions) mrcprm.ResourceManager {
	t.Helper()
	if name == "mrcp" {
		cfg := mrcprm.DefaultConfig()
		cfg.Workers = 1
		cfg.SolveTimeLimit = 0
		if opts.Retry != nil {
			cfg.Retry = *opts.Retry
		}
		opts.Extra = cfg
	}
	rm, err := mrcprm.NewPolicy(name, cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

// Every registered policy — including ones this test file has never heard
// of — must drive a contended workload to completion. MRCP-RM's late-job
// count is pinned so the smoke test doubles as a regression gate.
func TestEveryRegisteredPolicyRunsWorkload(t *testing.T) {
	names := mrcprm.PolicyNames()
	if len(names) < 4 {
		t.Fatalf("expected at least mrcp, minedf, fifo, edf registered; got %v", names)
	}
	jobs, cluster := tightWorkload(t)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			rm := newRegisteredPolicy(t, name, cluster, mrcprm.PolicyOptions{})
			m, err := mrcprm.Simulate(cluster, rm, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if m.JobsCompleted != len(jobs) {
				t.Errorf("completed %d of %d jobs", m.JobsCompleted, len(jobs))
			}
			if m.JobsAbandoned != 0 {
				t.Errorf("%d jobs abandoned in a fault-free run", m.JobsAbandoned)
			}
			if name == "mrcp" && m.N() != 2 {
				t.Errorf("mrcp late jobs = %d, want 2 (pre-kernel baseline)", m.N())
			}
			t.Logf("%s: N=%d T=%.1fs", rm.Name(), m.N(), m.T())
		})
	}
}

// doomJob fails every attempt of one job's tasks (task IDs are
// "t<job>_<phase><idx>") and leaves every other job untouched.
type doomJob struct{ prefix string }

func (d doomJob) Attempt(taskID string, _ int) mrcprm.AttemptFault {
	if strings.HasPrefix(taskID, d.prefix) {
		return mrcprm.AttemptFault{Fails: true, FailPoint: 0.5}
	}
	return mrcprm.AttemptFault{}
}
func (doomJob) PlannedOutages() []mrcprm.Outage { return nil }

// All registered policies share rmkit's retry accounting, so the same fault
// fingerprint must produce the identical abandonment decision everywhere:
// exactly the doomed job goes, under the default budgets and under an
// Options-supplied override alike.
func TestPoliciesAgreeOnAbandonment(t *testing.T) {
	jobs, cluster := faultTestWorkload(t)
	doomed := jobs[5]
	plan := doomJob{prefix: fmt.Sprintf("t%d_", doomed.ID)}
	retries := []struct {
		name string
		opts mrcprm.PolicyOptions
	}{
		{"default-retry", mrcprm.PolicyOptions{}},
		{"tight-retry", mrcprm.PolicyOptions{Retry: &mrcprm.RetryPolicy{MaxTaskRetries: 1}}},
	}
	for _, rp := range retries {
		t.Run(rp.name, func(t *testing.T) {
			for _, name := range mrcprm.PolicyNames() {
				rm := newRegisteredPolicy(t, name, cluster, rp.opts)
				m, err := mrcprm.SimulateWithFaults(cluster, rm, jobs, plan)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if m.JobsAbandoned != 1 {
					t.Errorf("%s: abandoned %d jobs, want exactly the doomed one", name, m.JobsAbandoned)
				}
				if m.JobsCompleted != len(jobs)-1 {
					t.Errorf("%s: completed %d of %d undoomed jobs", name, m.JobsCompleted, len(jobs)-1)
				}
				for _, r := range m.Records {
					if r.Job.ID == doomed.ID {
						t.Errorf("%s: doomed job %d has a completion record", name, doomed.ID)
					}
				}
			}
		})
	}
}
